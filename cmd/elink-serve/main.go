// Command elink-serve runs the streaming engine as an HTTP/JSON daemon:
// sensors (or a replayer) POST reading batches, the engine maintains the
// clustering and M-tree index incrementally, and clients query ranges,
// safe paths, statistics and the current clustering snapshot while
// ingestion continues.
//
// Usage:
//
//	elink-serve -addr :8080 -rows 6 -cols 9 -order 4 -delta 0.12
//
// With -data-dir the daemon is durable: every ingested batch is
// journaled to a write-ahead log, snapshots of the full engine state are
// written periodically (-snapshot-every), on demand (POST
// /admin/snapshot) and on graceful shutdown, and on boot the newest
// valid snapshot is restored and the WAL tail replayed, recovering the
// exact pre-crash state (see DESIGN.md, "Durability"). SIGINT/SIGTERM
// trigger a graceful drain: in-flight requests finish (10s deadline),
// then a final snapshot is written.
//
// Endpoints:
//
//	GET  /healthz          readiness: 200 {"status":"ready"} once
//	                       queryable, 503 {"status":"restoring"|"warming"}
//	                       while recovering or bootstrapping, 503
//	                       {"status":"diverged"} after a WAL append
//	                       failure (restart to recover)
//	POST /v1/ingest        {"readings":[{"node":0,"value":27.1},...]}
//	                       or {"features":[{"node":0,"feature":[...]},...]}
//	POST /v1/query/range   {"feature":[...],"radius":0.1,"initiator":0}
//	POST /v1/query/path    {"danger":[...],"gamma":0.2,"src":0,"dst":53}
//	GET  /v1/stats         cumulative engine counters
//	GET  /v1/snapshot      current epoch's clustering
//	POST /admin/snapshot   write a snapshot now (requires -data-dir)
//	GET  /metrics          Prometheus text exposition of the obs registry
//	GET  /debug/trace      last ?n= trace events as JSON lines
//	GET  /debug/spans      span traces: recent ring, top-K slowest and the
//	                       per-phase latency attribution table as JSON;
//	                       ?format=chrome emits Chrome trace-event JSON
//	                       loadable in Perfetto / chrome://tracing
//	GET  /debug/pprof/     runtime profiles (only with -pprof)
//
// Errors are JSON bodies {"error":"...","request_id":"..."} with
// meaningful statuses: bad payloads are 400, a warming-up or restoring
// engine is 503, engine-internal failures are 500. Every request gets a
// monotonic id echoed in the X-Request-ID response header, carried in
// the request's span trace and printed in the log line, so a slow span
// in /debug/spans and an error body cross-reference the same log entry.
// Requests are counted in http_requests_total / timed in
// http_request_duration_seconds (path labels are route patterns, so the
// cardinality is fixed).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"elink"
)

// version identifies the build in elink_build_info; stamp a release with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/elink-serve
var version = "dev"

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		rows      = flag.Int("rows", 6, "grid rows (ignored when -nodes > 0)")
		cols      = flag.Int("cols", 9, "grid cols (ignored when -nodes > 0)")
		nodes     = flag.Int("nodes", 0, "random-geometric node count (0 = use the grid)")
		degree    = flag.Float64("degree", 4, "average degree for the random network")
		order     = flag.Int("order", 2, "AR model order (0 = feature-only ingest)")
		delta     = flag.Float64("delta", 0.2, "clustering threshold δ")
		slack     = flag.Float64("slack", 0, "maintenance slack Δ (0 = δ/10)")
		policy    = flag.String("policy", "adaptive", "re-cluster policy: never | adaptive | periodic")
		frag      = flag.Float64("frag", 1.5, "fragmentation factor for -policy adaptive")
		period    = flag.Int("period", 20, "epoch period for -policy periodic")
		warmup    = flag.Int("warmup", 0, "observations per node before bootstrap (0 = 4*order)")
		seed      = flag.Int64("seed", 1, "seed for topology and clustering runs")
		tracebuf  = flag.Int("tracebuf", 0, "trace ring capacity (0 = default)")
		spanbuf   = flag.Int("spanbuf", 0, "span trace ring capacity (0 = default 256)")
		spanTopK  = flag.Int("span-topk", 0, "slowest span traces retained (0 = default 16)")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		dataDir   = flag.String("data-dir", "", "durability directory for snapshots + WAL (empty = no persistence)")
		restore   = flag.Bool("restore", true, "restore from -data-dir on boot (false discards prior state)")
		snapEvery = flag.Duration("snapshot-every", 0, "periodic background snapshot interval (0 = only on demand/shutdown)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
	)
	flag.Parse()

	var g *elink.Graph
	if *nodes > 0 {
		g = elink.NewRandomNetwork(*nodes, *degree, *seed)
	} else {
		g = elink.NewGrid(*rows, *cols)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}
	s := *slack
	if s == 0 {
		s = *delta / 10
	}
	reg := elink.NewMetricsRegistry()
	elink.RegisterBuildInfo(reg, version) // build metadata + uptime on /metrics
	elink.InstrumentParallelism(reg)      // pool utilization on /metrics
	tracer := elink.NewTraceBuffer(*tracebuf)
	spans := elink.NewSpanTracer(*spanbuf, *spanTopK)
	spans.Instrument(reg)                   // span_phase_seconds on /metrics
	elink.InstrumentParallelismSpans(spans) // fork-join batches feed the tracer
	engine, err := elink.NewEngine(g, elink.EngineConfig{
		Order:               *order,
		Delta:               *delta,
		Slack:               s,
		Metric:              elink.Euclidean(),
		Seed:                *seed,
		Policy:              pol,
		FragmentationFactor: *frag,
		Period:              *period,
		WarmupObs:           *warmup,
		Obs:                 reg,
		Trace:               tracer,
		Spans:               spans,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}

	srv := &server{engine: engine, reg: reg, tracer: tracer, spans: spans, dataDir: *dataDir}
	mux := newMux(srv, *withPprof)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dataDir != "" {
		pol, err := elink.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elink-serve:", err)
			os.Exit(2)
		}
		srv.walOpts = elink.WALOptions{Fsync: pol, Metrics: elink.NewWALMetrics(reg)}
		// Recover asynchronously so the listener comes up immediately and
		// /healthz can report "restoring"; every engine-touching endpoint
		// returns 503 until recovery finishes.
		srv.restoring.Store(true)
		go func() {
			if err := srv.recover(*restore); err != nil {
				// A failed recovery must not silently degrade into a fresh
				// engine — that would break the crash-exactness contract.
				log.Fatalf("elink-serve: recovery failed: %v", err)
			}
			srv.restoring.Store(false)
		}()
		if *snapEvery > 0 {
			go srv.snapshotLoop(ctx, *snapEvery)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("elink-serve: signal received, draining requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("elink-serve: shutdown: %v", err)
		}
	}()

	log.Printf("elink-serve: %d nodes, order %d, delta %g, slack %g, policy %s, listening on %s",
		g.N(), *order, *delta, s, pol, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(1)
	}
	<-shutdownDone

	if *dataDir != "" && !srv.restoring.Load() {
		if info, err := srv.writeSnapshot(); err != nil {
			log.Printf("elink-serve: shutdown snapshot: %v", err)
		} else {
			log.Printf("elink-serve: shutdown snapshot: seq %d, epoch %d, %d bytes", info.Seq, info.Epoch, info.Bytes)
		}
		if srv.wal != nil {
			if err := srv.wal.Close(); err != nil {
				log.Printf("elink-serve: close WAL: %v", err)
			}
		}
	}
	log.Printf("elink-serve: stopped")
}

func parsePolicy(s string) (elink.ReclusterPolicy, error) {
	switch strings.ToLower(s) {
	case "never":
		return elink.PolicyNever, nil
	case "adaptive":
		return elink.PolicyAdaptive, nil
	case "periodic":
		return elink.PolicyPeriodic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want never | adaptive | periodic)", s)
}

type server struct {
	engine *elink.Engine
	reg    *elink.MetricsRegistry
	tracer *elink.TraceBuffer
	// spans collects the hierarchical request/epoch/query span traces
	// served by /debug/spans; nil disables tracing (every Span method is
	// nil-safe).
	spans *elink.SpanTracer
	// reqID mints the monotonic request id the observe middleware echoes
	// in X-Request-ID, span labels, log lines and error bodies.
	reqID atomic.Int64

	// Durability state (zero when -data-dir is unset).
	dataDir string
	walOpts elink.WALOptions
	wal     *elink.WAL
	// restoring gates every engine-touching endpoint during boot
	// recovery; /healthz reports it as "restoring".
	restoring atomic.Bool
	// snapMu serializes snapshot-to-disk writers (the periodic loop, the
	// admin endpoint and the shutdown path).
	snapMu sync.Mutex
}

const snapSuffix = ".snap"

// snapshotPath names the snapshot for one ingest sequence; lexical order
// is sequence order, so directory listings sort oldest-first.
func (s *server) snapshotPath(seq int64) string {
	return filepath.Join(s.dataDir, fmt.Sprintf("snap-%016d%s", seq, snapSuffix))
}

// listSnapshots returns the data dir's snapshot files, newest first.
func (s *server) listSnapshots() []string {
	paths, _ := filepath.Glob(filepath.Join(s.dataDir, "snap-*"+snapSuffix))
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths
}

// recover brings the engine back to its pre-crash state: newest valid
// snapshot first (falling back to older ones if the newest is damaged),
// then the WAL tail, then the WAL is attached for journaling. With
// restore=false, prior state in the data dir is discarded instead — an
// explicit fresh start.
func (s *server) recover(restore bool) error {
	walDir := filepath.Join(s.dataDir, "wal")
	// Sweep temp files a crash mid-snapshot left behind. They were never
	// renamed into place, so they are not recovery points — just garbage
	// that would otherwise accumulate forever.
	if tmps, _ := filepath.Glob(filepath.Join(s.dataDir, "snap-*.tmp")); len(tmps) > 0 {
		for _, p := range tmps {
			os.Remove(p)
		}
		log.Printf("elink-serve: swept %d stale snapshot temp file(s)", len(tmps))
	}
	if !restore {
		for _, p := range s.listSnapshots() {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("discard %s: %w", p, err)
			}
		}
		if err := os.RemoveAll(walDir); err != nil {
			return fmt.Errorf("discard WAL: %w", err)
		}
		log.Printf("elink-serve: -restore=false, discarded prior state in %s", s.dataDir)
	}
	if restore {
		for _, p := range s.listSnapshots() {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			err = s.engine.Restore(f)
			f.Close()
			if err == nil {
				log.Printf("elink-serve: restored %s (seq %d, epoch %d)", filepath.Base(p), s.engine.Seq(), s.engine.Snapshot().Epoch)
				break
			}
			// A torn snapshot (crash mid-write before the rename, or disk
			// damage) is expected to be survivable: fall back to the next-
			// older one and let the WAL replay cover the difference.
			log.Printf("elink-serve: snapshot %s unusable (%v), trying older", filepath.Base(p), err)
		}
	}
	w, err := elink.OpenWAL(walDir, s.walOpts)
	if err != nil {
		return err
	}
	if restore {
		n, err := s.engine.ReplayWAL(w)
		if err != nil {
			return err
		}
		if n > 0 {
			log.Printf("elink-serve: replayed %d WAL batches, engine at seq %d", n, s.engine.Seq())
		}
	}
	s.engine.AttachWAL(w)
	s.wal = w
	return nil
}

// writeSnapshot writes one snapshot atomically (temp file + rename),
// prunes all but the newest 3, and lets the WAL drop fully covered
// segments.
func (s *server) writeSnapshot() (elink.SnapshotInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	tmp, err := os.CreateTemp(s.dataDir, "snap-*.tmp")
	if err != nil {
		return elink.SnapshotInfo{}, err
	}
	info, err := s.engine.SaveSnapshot(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return info, err
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath(info.Seq)); err != nil {
		os.Remove(tmp.Name())
		return info, err
	}
	snaps := s.listSnapshots()
	if len(snaps) > 3 {
		for _, p := range snaps[3:] {
			os.Remove(p)
		}
		snaps = snaps[:3]
	}
	// Truncate only through the OLDEST retained snapshot: recover() falls
	// back to older snapshots when the newest is damaged, and that fallback
	// needs the WAL records past the older snapshot's seq to still exist.
	// Truncating through the newest seq would make every snapshot but the
	// newest an unusable recovery point.
	if s.wal != nil && len(snaps) > 0 {
		if seq, ok := snapshotSeq(snaps[len(snaps)-1]); ok {
			if err := s.wal.TruncateThrough(seq); err != nil {
				log.Printf("elink-serve: WAL truncate: %v", err)
			}
		}
	}
	return info, nil
}

// snapshotSeq recovers the ingest sequence number embedded in a
// snapshot's file name by snapshotPath.
func snapshotSeq(path string) (int64, bool) {
	base := strings.TrimSuffix(filepath.Base(path), snapSuffix)
	base = strings.TrimPrefix(base, "snap-")
	seq, err := strconv.ParseInt(base, 10, 64)
	return seq, err == nil && seq >= 0
}

// snapshotLoop writes periodic background snapshots until ctx ends.
func (s *server) snapshotLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.restoring.Load() {
				continue
			}
			if info, err := s.writeSnapshot(); err != nil {
				log.Printf("elink-serve: periodic snapshot: %v", err)
			} else {
				log.Printf("elink-serve: periodic snapshot: seq %d, epoch %d, %d bytes", info.Seq, info.Epoch, info.Bytes)
			}
		}
	}
}

// newMux wires every route through the observe middleware; main and the
// tests build the exact same handler tree.
func newMux(s *server, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.Handle(method+" "+path, s.observe(path, h))
	}
	handle("GET", "/healthz", s.health)
	handle("POST", "/v1/ingest", s.ingest)
	handle("POST", "/v1/query/range", s.rangeQuery)
	handle("POST", "/v1/query/path", s.pathQuery)
	handle("GET", "/v1/stats", s.stats)
	handle("GET", "/v1/snapshot", s.snapshot)
	handle("POST", "/admin/snapshot", s.adminSnapshot)
	handle("GET", "/metrics", s.metrics)
	handle("GET", "/debug/trace", s.trace)
	handle("GET", "/debug/spans", s.spansDump)
	if withPprof {
		// The pprof handlers are wired explicitly so nothing is exposed
		// unless the flag asks for it (the blank import would register on
		// the default mux regardless).
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the status a handler wrote so the middleware
// can log and label it, and carries the request's id and span so
// handlers reached through the middleware can attach engine work to the
// request trace and stamp error bodies.
type statusRecorder struct {
	http.ResponseWriter
	status int
	reqID  int64
	span   *elink.Span
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// reqSpan recovers the request's root span from the ResponseWriter the
// observe middleware handed the handler; nil (safe everywhere a span is
// used) when the handler runs outside the middleware or tracing is off.
func reqSpan(w http.ResponseWriter) *elink.Span {
	if rec, ok := w.(*statusRecorder); ok {
		return rec.span
	}
	return nil
}

// observe wraps a handler with per-request structured logging, the
// http_requests_total / http_request_duration_seconds metrics, a
// monotonic request id (echoed in X-Request-ID, log lines and error
// bodies) and a root "http" span the handler's engine work nests under.
// The path label is the registered route pattern, never the raw URL, so
// the label set stays bounded.
func (s *server) observe(path string, h http.HandlerFunc) http.Handler {
	s.reg.Help("http_requests_total", "HTTP requests served, by route and status code.")
	s.reg.Help("http_request_duration_seconds", "Wall-clock time serving an HTTP request, by route.")
	hist := s.reg.Histogram("http_request_duration_seconds", elink.LatencyBuckets(), "path", path)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		ids := strconv.FormatInt(id, 10)
		w.Header().Set("X-Request-ID", ids)
		sp := s.spans.Start("http")
		sp.Label("route", path)
		sp.Label("request_id", ids)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK, reqID: id, span: sp}
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		sp.Label("status", strconv.Itoa(rec.status))
		sp.Finish()
		s.reg.Counter("http_requests_total", "path", path, "code", strconv.Itoa(rec.status)).Inc()
		hist.Observe(d.Seconds())
		log.Printf("elink-serve: method=%s path=%s status=%d duration=%s request_id=%s", r.Method, path, rec.status, d, ids)
	})
}

// gate rejects engine-touching requests while boot recovery is running;
// serving them against the half-restored engine would be wrong, and
// accepting ingest would fork the journal.
func (s *server) gate(w http.ResponseWriter) bool {
	if s.restoring.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("restoring from snapshot"))
		return false
	}
	return true
}

// ingestRequest carries either raw readings (engine fits AR models) or
// pre-fitted features (nodes run their own models); exactly one must be
// set.
type ingestRequest struct {
	Readings []elink.Reading       `json:"readings,omitempty"`
	Features []elink.FeatureUpdate `json:"features,omitempty"`
}

type rangeRequest struct {
	Feature   elink.Feature `json:"feature"`
	Radius    float64       `json:"radius"`
	Initiator elink.NodeID  `json:"initiator"`
}

type pathRequest struct {
	Danger elink.Feature `json:"danger"`
	Gamma  float64       `json:"gamma"`
	Src    elink.NodeID  `json:"src"`
	Dst    elink.NodeID  `json:"dst"`
}

// health reports the boot state machine: restoring (recovery in flight)
// → warming (models not yet bootstrapped) → ready. Only ready is 200, so
// orchestrators hold traffic until the engine is actually queryable. A
// diverged engine (a batch applied but never journaled — see
// elink.ErrWALDiverged) reports 503 "diverged" so the orchestrator
// restarts the process; recovery rebuilds exactly the journaled state.
func (s *server) health(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.restoring.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": true, "ready": false, "status": "restoring"})
	case s.engine.Diverged() != nil:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "ready": false, "status": "diverged"})
	case !s.engine.Ready():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": true, "ready": false, "status": "warming"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "ready": true, "status": "ready"})
	}
}

func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case len(req.Readings) > 0 && len(req.Features) > 0:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("a batch carries readings or features, not both"))
	case len(req.Readings) > 0:
		res, err := s.engine.IngestSpanned(req.Readings, reqSpan(w))
		writeResult(w, res, err)
	case len(req.Features) > 0:
		res, err := s.engine.IngestFeaturesSpanned(req.Features, reqSpan(w))
		writeResult(w, res, err)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
	}
}

func (s *server) rangeQuery(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.RangeQuerySpanned(req.Feature, req.Radius, req.Initiator, reqSpan(w))
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matches":  res.Matches,
		"messages": res.Stats.Messages,
	})
}

func (s *server) pathQuery(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req pathRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.PathQuerySpanned(req.Danger, req.Gamma, req.Src, req.Dst, reqSpan(w))
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"found":    res.Found,
		"path":     res.Path,
		"messages": res.Stats.Messages,
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	snap := s.engine.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, elink.ErrNotReady)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      snap.Epoch,
		"clusters":   snap.NumClusters(),
		"clustering": snap.Clustering,
	})
}

// adminSnapshot writes a durable snapshot on demand and returns its
// summary.
func (s *server) adminSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	if s.dataDir == "" {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("no -data-dir configured"))
		return
	}
	info, err := s.writeSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("elink-serve: write metrics: %v", err)
	}
}

// trace streams the last n trace events (default: all buffered) as JSON
// lines, oldest first.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	n := s.tracer.Len()
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q: want a non-negative integer", raw))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if n == 0 {
		// Tracer.Last treats n<=0 as "everything buffered"; an explicit
		// n=0 means none.
		return
	}
	if err := s.tracer.WriteJSONL(w, n); err != nil {
		log.Printf("elink-serve: write trace: %v", err)
	}
}

// spansDump serves the span tracer: by default a JSON document with the
// per-phase latency attribution table, the last ?n= recent traces (0 or
// unset = all buffered) and the top-K slowest; with ?format=chrome, the
// same traces as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing for a flame-graph view of the pipeline.
func (s *server) spansDump(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q: want a non-negative integer", raw))
			return
		}
		n = v
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := s.spans.WriteJSON(w, n); err != nil {
			log.Printf("elink-serve: write spans: %v", err)
		}
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="elink-trace.json"`)
		if err := s.spans.WriteChromeTrace(w, n); err != nil {
			log.Printf("elink-serve: write chrome trace: %v", err)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q: want json or chrome", format))
	}
}

// queryStatus maps engine query errors to HTTP statuses: a warming-up
// engine is 503 (retry later), anything else is a bad request.
func queryStatus(err error) int {
	if errors.Is(err, elink.ErrNotReady) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// ingestStatus maps ingest errors: payload mistakes (tagged
// ErrInvalidBatch) are the caller's fault, a diverged journal is 503 —
// retrying against this process cannot succeed (and must not: the
// engine latched read-only so a retry of an already-applied batch is
// rejected rather than double-applied) — and anything else is an engine
// failure.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, elink.ErrInvalidBatch):
		return http.StatusBadRequest
	case errors.Is(err, elink.ErrWALDiverged):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeResult(w http.ResponseWriter, res *elink.IngestResult, err error) {
	if err != nil {
		writeError(w, ingestStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if rec, ok := w.(*statusRecorder); ok && rec.reqID != 0 {
		body["request_id"] = strconv.FormatInt(rec.reqID, 10)
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("elink-serve: encode response: %v", err)
	}
}
