// Command elink-serve runs the streaming engine as an HTTP/JSON daemon:
// sensors (or a replayer) POST reading batches, the engine maintains the
// clustering and M-tree index incrementally, and clients query ranges,
// safe paths, statistics and the current clustering snapshot while
// ingestion continues.
//
// Usage:
//
//	elink-serve -addr :8080 -rows 6 -cols 9 -order 4 -delta 0.12
//
// Endpoints:
//
//	GET  /healthz          liveness + readiness ({"ok":true,"ready":...})
//	POST /v1/ingest        {"readings":[{"node":0,"value":27.1},...]}
//	                       or {"features":[{"node":0,"feature":[...]},...]}
//	POST /v1/query/range   {"feature":[...],"radius":0.1,"initiator":0}
//	POST /v1/query/path    {"danger":[...],"gamma":0.2,"src":0,"dst":53}
//	GET  /v1/stats         cumulative engine counters
//	GET  /v1/snapshot      current epoch's clustering
//	GET  /metrics          Prometheus text exposition of the obs registry
//	GET  /debug/trace      last ?n= trace events as JSON lines
//	GET  /debug/pprof/     runtime profiles (only with -pprof)
//
// Errors are JSON bodies {"error":"..."} with meaningful statuses: bad
// payloads are 400, a warming-up engine is 503, engine-internal failures
// are 500. Every request is logged with method, path, status and
// duration, and counted in http_requests_total / timed in
// http_request_duration_seconds (path labels are route patterns, so the
// cardinality is fixed).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"elink"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		rows      = flag.Int("rows", 6, "grid rows (ignored when -nodes > 0)")
		cols      = flag.Int("cols", 9, "grid cols (ignored when -nodes > 0)")
		nodes     = flag.Int("nodes", 0, "random-geometric node count (0 = use the grid)")
		degree    = flag.Float64("degree", 4, "average degree for the random network")
		order     = flag.Int("order", 2, "AR model order (0 = feature-only ingest)")
		delta     = flag.Float64("delta", 0.2, "clustering threshold δ")
		slack     = flag.Float64("slack", 0, "maintenance slack Δ (0 = δ/10)")
		policy    = flag.String("policy", "adaptive", "re-cluster policy: never | adaptive | periodic")
		frag      = flag.Float64("frag", 1.5, "fragmentation factor for -policy adaptive")
		period    = flag.Int("period", 20, "epoch period for -policy periodic")
		warmup    = flag.Int("warmup", 0, "observations per node before bootstrap (0 = 4*order)")
		seed      = flag.Int64("seed", 1, "seed for topology and clustering runs")
		tracebuf  = flag.Int("tracebuf", 0, "trace ring capacity (0 = default)")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	var g *elink.Graph
	if *nodes > 0 {
		g = elink.NewRandomNetwork(*nodes, *degree, *seed)
	} else {
		g = elink.NewGrid(*rows, *cols)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}
	s := *slack
	if s == 0 {
		s = *delta / 10
	}
	reg := elink.NewMetricsRegistry()
	elink.InstrumentParallelism(reg) // pool utilization on /metrics
	tracer := elink.NewTraceBuffer(*tracebuf)
	engine, err := elink.NewEngine(g, elink.EngineConfig{
		Order:               *order,
		Delta:               *delta,
		Slack:               s,
		Metric:              elink.Euclidean(),
		Seed:                *seed,
		Policy:              pol,
		FragmentationFactor: *frag,
		Period:              *period,
		WarmupObs:           *warmup,
		Obs:                 reg,
		Trace:               tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}

	srv := &server{engine: engine, reg: reg, tracer: tracer}
	mux := newMux(srv, *withPprof)

	log.Printf("elink-serve: %d nodes, order %d, delta %g, slack %g, policy %s, listening on %s",
		g.N(), *order, *delta, s, pol, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func parsePolicy(s string) (elink.ReclusterPolicy, error) {
	switch strings.ToLower(s) {
	case "never":
		return elink.PolicyNever, nil
	case "adaptive":
		return elink.PolicyAdaptive, nil
	case "periodic":
		return elink.PolicyPeriodic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want never | adaptive | periodic)", s)
}

type server struct {
	engine *elink.Engine
	reg    *elink.MetricsRegistry
	tracer *elink.TraceBuffer
}

// newMux wires every route through the observe middleware; main and the
// tests build the exact same handler tree.
func newMux(s *server, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.Handle(method+" "+path, s.observe(path, h))
	}
	handle("GET", "/healthz", s.health)
	handle("POST", "/v1/ingest", s.ingest)
	handle("POST", "/v1/query/range", s.rangeQuery)
	handle("POST", "/v1/query/path", s.pathQuery)
	handle("GET", "/v1/stats", s.stats)
	handle("GET", "/v1/snapshot", s.snapshot)
	handle("GET", "/metrics", s.metrics)
	handle("GET", "/debug/trace", s.trace)
	if withPprof {
		// The pprof handlers are wired explicitly so nothing is exposed
		// unless the flag asks for it (the blank import would register on
		// the default mux regardless).
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the status a handler wrote so the middleware
// can log and label it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// observe wraps a handler with per-request structured logging and the
// http_requests_total / http_request_duration_seconds metrics. The path
// label is the registered route pattern, never the raw URL, so the label
// set stays bounded.
func (s *server) observe(path string, h http.HandlerFunc) http.Handler {
	s.reg.Help("http_requests_total", "HTTP requests served, by route and status code.")
	s.reg.Help("http_request_duration_seconds", "Wall-clock time serving an HTTP request, by route.")
	hist := s.reg.Histogram("http_request_duration_seconds", elink.LatencyBuckets(), "path", path)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		s.reg.Counter("http_requests_total", "path", path, "code", strconv.Itoa(rec.status)).Inc()
		hist.Observe(d.Seconds())
		log.Printf("elink-serve: method=%s path=%s status=%d duration=%s", r.Method, path, rec.status, d)
	})
}

// ingestRequest carries either raw readings (engine fits AR models) or
// pre-fitted features (nodes run their own models); exactly one must be
// set.
type ingestRequest struct {
	Readings []elink.Reading       `json:"readings,omitempty"`
	Features []elink.FeatureUpdate `json:"features,omitempty"`
}

type rangeRequest struct {
	Feature   elink.Feature `json:"feature"`
	Radius    float64       `json:"radius"`
	Initiator elink.NodeID  `json:"initiator"`
}

type pathRequest struct {
	Danger elink.Feature `json:"danger"`
	Gamma  float64       `json:"gamma"`
	Src    elink.NodeID  `json:"src"`
	Dst    elink.NodeID  `json:"dst"`
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "ready": s.engine.Ready()})
}

func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case len(req.Readings) > 0 && len(req.Features) > 0:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("a batch carries readings or features, not both"))
	case len(req.Readings) > 0:
		res, err := s.engine.Ingest(req.Readings)
		writeResult(w, res, err)
	case len(req.Features) > 0:
		res, err := s.engine.IngestFeatures(req.Features)
		writeResult(w, res, err)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
	}
}

func (s *server) rangeQuery(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.RangeQuery(req.Feature, req.Radius, req.Initiator)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matches":  res.Matches,
		"messages": res.Stats.Messages,
	})
}

func (s *server) pathQuery(w http.ResponseWriter, r *http.Request) {
	var req pathRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.PathQuery(req.Danger, req.Gamma, req.Src, req.Dst)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"found":    res.Found,
		"path":     res.Path,
		"messages": res.Stats.Messages,
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, elink.ErrNotReady)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      snap.Epoch,
		"clusters":   snap.NumClusters(),
		"clustering": snap.Clustering,
	})
}

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("elink-serve: write metrics: %v", err)
	}
}

// trace streams the last n trace events (default: all buffered) as JSON
// lines, oldest first.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	n := s.tracer.Len()
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q: want a non-negative integer", raw))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if n == 0 {
		// Tracer.Last treats n<=0 as "everything buffered"; an explicit
		// n=0 means none.
		return
	}
	if err := s.tracer.WriteJSONL(w, n); err != nil {
		log.Printf("elink-serve: write trace: %v", err)
	}
}

// queryStatus maps engine query errors to HTTP statuses: a warming-up
// engine is 503 (retry later), anything else is a bad request.
func queryStatus(err error) int {
	if errors.Is(err, elink.ErrNotReady) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// ingestStatus maps ingest errors: payload mistakes (tagged
// ErrInvalidBatch) are the caller's fault, anything else is an engine
// failure.
func ingestStatus(err error) int {
	if errors.Is(err, elink.ErrInvalidBatch) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeResult(w http.ResponseWriter, res *elink.IngestResult, err error) {
	if err != nil {
		writeError(w, ingestStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("elink-serve: encode response: %v", err)
	}
}
