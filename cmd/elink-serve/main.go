// Command elink-serve runs the streaming engine as an HTTP/JSON daemon:
// sensors (or a replayer) POST reading batches, the engine maintains the
// clustering and M-tree index incrementally, and clients query ranges,
// safe paths, statistics and the current clustering snapshot while
// ingestion continues.
//
// Usage:
//
//	elink-serve -addr :8080 -rows 6 -cols 9 -order 4 -delta 0.12
//
// Endpoints:
//
//	GET  /healthz          liveness + readiness ({"ok":true,"ready":...})
//	POST /v1/ingest        {"readings":[{"node":0,"value":27.1},...]}
//	                       or {"features":[{"node":0,"feature":[...]},...]}
//	POST /v1/query/range   {"feature":[...],"radius":0.1,"initiator":0}
//	POST /v1/query/path    {"danger":[...],"gamma":0.2,"src":0,"dst":53}
//	GET  /v1/stats         cumulative engine counters
//	GET  /v1/snapshot      current epoch's clustering
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"elink"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		rows   = flag.Int("rows", 6, "grid rows (ignored when -nodes > 0)")
		cols   = flag.Int("cols", 9, "grid cols (ignored when -nodes > 0)")
		nodes  = flag.Int("nodes", 0, "random-geometric node count (0 = use the grid)")
		degree = flag.Float64("degree", 4, "average degree for the random network")
		order  = flag.Int("order", 2, "AR model order (0 = feature-only ingest)")
		delta  = flag.Float64("delta", 0.2, "clustering threshold δ")
		slack  = flag.Float64("slack", 0, "maintenance slack Δ (0 = δ/10)")
		policy = flag.String("policy", "adaptive", "re-cluster policy: never | adaptive | periodic")
		frag   = flag.Float64("frag", 1.5, "fragmentation factor for -policy adaptive")
		period = flag.Int("period", 20, "epoch period for -policy periodic")
		warmup = flag.Int("warmup", 0, "observations per node before bootstrap (0 = 4*order)")
		seed   = flag.Int64("seed", 1, "seed for topology and clustering runs")
	)
	flag.Parse()

	var g *elink.Graph
	if *nodes > 0 {
		g = elink.NewRandomNetwork(*nodes, *degree, *seed)
	} else {
		g = elink.NewGrid(*rows, *cols)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}
	s := *slack
	if s == 0 {
		s = *delta / 10
	}
	engine, err := elink.NewEngine(g, elink.EngineConfig{
		Order:               *order,
		Delta:               *delta,
		Slack:               s,
		Metric:              elink.Euclidean(),
		Seed:                *seed,
		Policy:              pol,
		FragmentationFactor: *frag,
		Period:              *period,
		WarmupObs:           *warmup,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-serve:", err)
		os.Exit(2)
	}

	srv := &server{engine: engine}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.health)
	mux.HandleFunc("POST /v1/ingest", srv.ingest)
	mux.HandleFunc("POST /v1/query/range", srv.rangeQuery)
	mux.HandleFunc("POST /v1/query/path", srv.pathQuery)
	mux.HandleFunc("GET /v1/stats", srv.stats)
	mux.HandleFunc("GET /v1/snapshot", srv.snapshot)

	log.Printf("elink-serve: %d nodes, order %d, delta %g, slack %g, policy %s, listening on %s",
		g.N(), *order, *delta, s, pol, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func parsePolicy(s string) (elink.ReclusterPolicy, error) {
	switch strings.ToLower(s) {
	case "never":
		return elink.PolicyNever, nil
	case "adaptive":
		return elink.PolicyAdaptive, nil
	case "periodic":
		return elink.PolicyPeriodic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want never | adaptive | periodic)", s)
}

type server struct {
	engine *elink.Engine
}

// ingestRequest carries either raw readings (engine fits AR models) or
// pre-fitted features (nodes run their own models); exactly one must be
// set.
type ingestRequest struct {
	Readings []elink.Reading       `json:"readings,omitempty"`
	Features []elink.FeatureUpdate `json:"features,omitempty"`
}

type rangeRequest struct {
	Feature   elink.Feature `json:"feature"`
	Radius    float64       `json:"radius"`
	Initiator elink.NodeID  `json:"initiator"`
}

type pathRequest struct {
	Danger elink.Feature `json:"danger"`
	Gamma  float64       `json:"gamma"`
	Src    elink.NodeID  `json:"src"`
	Dst    elink.NodeID  `json:"dst"`
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "ready": s.engine.Ready()})
}

func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case len(req.Readings) > 0 && len(req.Features) > 0:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("a batch carries readings or features, not both"))
	case len(req.Readings) > 0:
		res, err := s.engine.Ingest(req.Readings)
		writeResult(w, res, err)
	case len(req.Features) > 0:
		res, err := s.engine.IngestFeatures(req.Features)
		writeResult(w, res, err)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
	}
}

func (s *server) rangeQuery(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.RangeQuery(req.Feature, req.Radius, req.Initiator)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matches":  res.Matches,
		"messages": res.Stats.Messages,
	})
}

func (s *server) pathQuery(w http.ResponseWriter, r *http.Request) {
	var req pathRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.PathQuery(req.Danger, req.Gamma, req.Src, req.Dst)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"found":    res.Found,
		"path":     res.Path,
		"messages": res.Stats.Messages,
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, elink.ErrNotReady)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      snap.Epoch,
		"clusters":   snap.NumClusters(),
		"clustering": snap.Clustering,
	})
}

// queryStatus maps engine query errors to HTTP statuses: a warming-up
// engine is 503 (retry later), anything else is a bad request.
func queryStatus(err error) int {
	if err == elink.ErrNotReady {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeResult(w http.ResponseWriter, res *elink.IngestResult, err error) {
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("elink-serve: encode response: %v", err)
	}
}
