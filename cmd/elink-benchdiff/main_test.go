package main

import (
	"encoding/json"
	"testing"
)

func parse(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestDiffPersistSchema drives the gate on the BENCH_persist.json shape:
// a slower snapshot rung regresses, a faster restore does not, and the
// rungs align by node count even when the ladder order flips.
func TestDiffPersistSchema(t *testing.T) {
	oldDoc := parse(t, `{"reps":5,"rows":[
		{"n":500,"snapshot_ms":0.5,"restore_ms":0.5,"bytes":1000,"bytes_per_node":2},
		{"n":2500,"snapshot_ms":2.8,"restore_ms":4.8,"bytes":5000,"bytes_per_node":2}]}`)
	newDoc := parse(t, `{"reps":5,"rows":[
		{"n":2500,"snapshot_ms":2.9,"restore_ms":4.7,"bytes":5000,"bytes_per_node":2},
		{"n":500,"snapshot_ms":0.9,"restore_ms":0.3,"bytes":1000,"bytes_per_node":2}]}`)

	rep := diff(oldDoc, newDoc, 10)
	if len(rep.regressions) != 1 || rep.regressions[0] != "rows[n=500].snapshot_ms" {
		t.Fatalf("regressions = %v, want only rows[n=500].snapshot_ms", rep.regressions)
	}
	if len(rep.onlyOld) != 0 || len(rep.onlyNew) != 0 {
		t.Fatalf("misaligned rows: onlyOld=%v onlyNew=%v", rep.onlyOld, rep.onlyNew)
	}
}

// TestDiffSpeedupDirection: speedups regress downward, not upward.
func TestDiffSpeedupDirection(t *testing.T) {
	oldDoc := parse(t, `{"eigen":[{"n":100,"serial_ms":10,"parallel_ms":5,"speedup":2.0}]}`)

	faster := parse(t, `{"eigen":[{"n":100,"serial_ms":10,"parallel_ms":4,"speedup":2.5}]}`)
	if rep := diff(oldDoc, faster, 10); len(rep.regressions) != 0 {
		t.Fatalf("faster run flagged: %v", rep.regressions)
	}
	slower := parse(t, `{"eigen":[{"n":100,"serial_ms":10,"parallel_ms":8,"speedup":1.25}]}`)
	rep := diff(oldDoc, slower, 10)
	want := map[string]bool{"eigen[n=100].parallel_ms": true, "eigen[n=100].speedup": true}
	if len(rep.regressions) != len(want) {
		t.Fatalf("regressions = %v, want %v", rep.regressions, want)
	}
	for _, r := range rep.regressions {
		if !want[r] {
			t.Fatalf("unexpected regression %q", r)
		}
	}
}

// TestDiffToleranceAndContext: movement inside the tolerance passes, and
// context fields (reps, workers, strings) never fail the gate.
func TestDiffToleranceAndContext(t *testing.T) {
	oldDoc := parse(t, `{"reps":5,"grid":"9x6","rows":[{"n":100,"snapshot_ms":1.0}]}`)
	newDoc := parse(t, `{"reps":7,"grid":"10x10","rows":[{"n":100,"snapshot_ms":1.08}]}`)

	rep := diff(oldDoc, newDoc, 10)
	if len(rep.regressions) != 0 {
		t.Fatalf("within-tolerance change flagged: %v", rep.regressions)
	}
	// reps changed (context number) and grid changed (context string):
	// both reported, neither failing.
	if len(rep.ctxChanged) != 1 {
		t.Fatalf("ctxChanged = %v, want the grid string", rep.ctxChanged)
	}
	// Beyond tolerance it fails.
	if rep := diff(oldDoc, newDoc, 5); len(rep.regressions) != 1 {
		t.Fatalf("8%% move at 5%% tolerance: regressions = %v", rep.regressions)
	}
}

// TestDiffMissingMetrics: paths present in one file only are reported,
// never compared.
func TestDiffMissingMetrics(t *testing.T) {
	oldDoc := parse(t, `{"rows":[{"n":1,"snapshot_ms":1}],"gone_ms":4}`)
	newDoc := parse(t, `{"rows":[{"n":1,"snapshot_ms":1}],"added_ms":9}`)
	rep := diff(oldDoc, newDoc, 10)
	if len(rep.regressions) != 0 {
		t.Fatalf("regressions = %v", rep.regressions)
	}
	if len(rep.onlyOld) != 1 || rep.onlyOld[0] != "gone_ms" {
		t.Fatalf("onlyOld = %v", rep.onlyOld)
	}
	if len(rep.onlyNew) != 1 || rep.onlyNew[0] != "added_ms" {
		t.Fatalf("onlyNew = %v", rep.onlyNew)
	}
}

// TestClassify pins the direction heuristics for every field name the
// BENCH_* schemas use today.
func TestClassify(t *testing.T) {
	cases := map[string]direction{
		"rows[n=500].snapshot_ms":               lowerBetter,
		"rows[n=500].restore_ms":                lowerBetter,
		"rows[n=500].bytes":                     lowerBetter,
		"rows[n=500].bytes_per_node":            lowerBetter,
		"rows[grid=9x6].path_cached_ns_per_msg": lowerBetter,
		"eigen[n=100].speedup":                  higherBetter,
		"harness.speedup":                       higherBetter,
		"overhead_pct":                          lowerBetter,
		"phases[phase=epoch].p95_us":            lowerBetter,
		"ladder[n=2500].lobpcg_ms":              lowerBetter,
		"ladder[n=2500].worst_residual":         lowerBetter,
		"ladder[n=2500].legacy_residual":        lowerBetter,
		"snapshot_mb":                           lowerBetter,
		"spectral.wall_s":                       lowerBetter,
		"reps":                                  context,
		"gomaxprocs":                            context,
		"workers":                               context,
		"rows[n=500].messages_routed":           context,
		"ladder[n=2500].iters":                  lowerBetter,
		"ladder[n=2500].unprecond_iters":        lowerBetter,
		"ladder[n=2500].unprecond_ms":           lowerBetter,
		"ladder[n=2500].speedup":                higherBetter,
		"ladder[n=2500].coarse_levels":          context,
		"ladder[n=2500].nnz":                    context,
		"sparsify.nnz_sparsified":               context,
		"spectral.clusters":                     context,
		"k":                                     context,
		"tol":                                   context,
	}
	for path, want := range cases {
		got, known := classify(path)
		if got != want {
			t.Errorf("classify(%q) = %v, want %v", path, got, want)
		}
		if !known {
			t.Errorf("classify(%q) reports the field as unrecognized", path)
		}
	}
}

// TestDiffWarnsOnUnclassified: a numeric leaf matching no direction rule
// and no known context name is surfaced (once per path, from either
// file) but never fails the gate.
func TestDiffWarnsOnUnclassified(t *testing.T) {
	oldDoc := parse(t, `{"rows":[{"n":1,"snapshot_ms":1,"mystery_metric":5}]}`)
	newDoc := parse(t, `{"rows":[{"n":1,"snapshot_ms":1,"mystery_metric":50}],"novel_gauge":2}`)
	rep := diff(oldDoc, newDoc, 10)
	if len(rep.regressions) != 0 {
		t.Fatalf("unclassified metrics failed the gate: %v", rep.regressions)
	}
	want := []string{"novel_gauge", "rows[n=1].mystery_metric"}
	if len(rep.unclassified) != len(want) {
		t.Fatalf("unclassified = %v, want %v", rep.unclassified, want)
	}
	for i, p := range want {
		if rep.unclassified[i] != p {
			t.Fatalf("unclassified = %v, want %v", rep.unclassified, want)
		}
	}
	// Every field of the committed BENCH schemas stays classified: no
	// warning for the fields the suites actually emit.
	clean := parse(t, `{"gomaxprocs":1,"workers":1,"k":8,"tol":0.0002,"ladder":[
		{"n":2500,"nnz":12300,"lobpcg_ms":950,"iters":55,"worst_residual":0.0002,
		 "precond":"chebyshev","coarse_levels":4,"unprecond_ms":4300,"unprecond_iters":55,
		 "speedup":4.5,"legacy_ms":380,"legacy_residual":0.0004}],
		"spectral":{"n":10000,"spectral_wall_ms":19000,"clusters":8},
		"sparsify":{"n":4000,"nnz":156824,"nnz_sparsified":67998,"solve_ms":883,"solve_sparsified_ms":841}}`)
	if rep := diff(clean, clean, 10); len(rep.unclassified) != 0 {
		t.Fatalf("BENCH_eigen_sparse schema has unclassified fields: %v", rep.unclassified)
	}
}

// TestDiffItersGate: iteration counts are deterministic solver outputs —
// a rise beyond tolerance fails the gate even when wall-clock is flat.
func TestDiffItersGate(t *testing.T) {
	oldDoc := parse(t, `{"ladder":[{"n":2500,"lobpcg_ms":950,"iters":10,"coarse_levels":4}]}`)
	newDoc := parse(t, `{"ladder":[{"n":2500,"lobpcg_ms":955,"iters":20,"coarse_levels":6}]}`)
	rep := diff(oldDoc, newDoc, 25)
	if len(rep.regressions) != 1 || rep.regressions[0] != "ladder[n=2500].iters" {
		t.Fatalf("regressions = %v, want only ladder[n=2500].iters", rep.regressions)
	}
	// Fewer iterations is an improvement, never a regression; warm-start
	// depth (coarse_levels) is context either way.
	better := parse(t, `{"ladder":[{"n":2500,"lobpcg_ms":950,"iters":5,"coarse_levels":2}]}`)
	if rep := diff(oldDoc, better, 25); len(rep.regressions) != 0 {
		t.Fatalf("iteration drop flagged: %v", rep.regressions)
	}
}
