// Command elink-benchdiff compares two benchmark snapshot files (the
// BENCH_routes.json / BENCH_parallel.json / BENCH_persist.json payloads
// the Makefile's bench-* targets write) and fails when a tracked metric
// regressed beyond a tolerance — the commit-to-commit perf gate.
//
// Usage:
//
//	elink-benchdiff old.json new.json             # report, exit 1 on >10% regression
//	elink-benchdiff -tol 25 old.json new.json     # looser gate
//	elink-benchdiff -all old.json new.json        # print every metric, not just movers
//
// The diff is schema-agnostic: both files are flattened to
// path → number, array elements are aligned by their identifying field
// (n, nodes, grid, figures) rather than position so ladder reorderings
// don't misalign rungs, and each metric's direction is classified from
// its name — latencies/sizes (ms, ns, bytes, seconds) regress upward,
// speedups regress downward, and context fields (reps, workers,
// gomaxprocs, counts) are compared for equality but never fail the gate.
// Metrics present in only one file are reported and skipped.
//
// Exit status: 0 clean, 1 at least one regression beyond -tol, 2 usage
// or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	var (
		tol = flag.Float64("tol", 10, "regression tolerance in percent")
		all = flag.Bool("all", false, "print every compared metric, not only movers and regressions")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: elink-benchdiff [-tol pct] [-all] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDoc, err := loadJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := loadJSON(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "elink-benchdiff:", err)
		os.Exit(2)
	}

	rep := diff(oldDoc, newDoc, *tol)
	render(os.Stdout, rep, *all)
	if len(rep.regressions) > 0 {
		fmt.Fprintf(os.Stderr, "elink-benchdiff: %d metric(s) regressed beyond %.0f%%\n", len(rep.regressions), *tol)
		os.Exit(1)
	}
}

func loadJSON(path string) (any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// direction classifies a metric path by its final field name.
type direction int

const (
	lowerBetter  direction = iota // latency, size: regression = got slower/bigger
	higherBetter                  // speedup: regression = got smaller
	context                       // reps, workers, counts: informational only
)

// knownContext names the numeric fields that are deliberately
// informational: run shape (sizes, repetition counts, worker counts) and
// deterministic outputs (edge counts, cluster counts, warm-start depth)
// that the gate compares but never fails on. Iteration counts are NOT
// context — they classify lowerBetter, so a solver that starts needing
// more iterations fails the gate even when wall-clock noise hides it. A
// numeric leaf that neither matches a direction suffix nor appears here
// is reported as unclassified so new schema fields cannot silently land
// ungated.
var knownContext = map[string]bool{
	"n": true, "nodes": true, "reps": true, "workers": true,
	"gomaxprocs": true, "sweeps": true, "epochs": true, "traces": true,
	"count": true, "k": true, "tol": true, "seed": true,
	"clusters": true, "nnz": true, "nnz_sparsified": true,
	"messages_routed": true, "coarse_levels": true,
}

// classify returns a metric path's direction plus whether the final
// field name was recognized at all — unrecognized numeric leaves fall
// into the ungated context bucket and should be surfaced as warnings.
func classify(path string) (direction, bool) {
	field := path
	if i := strings.LastIndexByte(field, '.'); i >= 0 {
		field = field[i+1:]
	}
	switch {
	case strings.Contains(field, "speedup"):
		return higherBetter, true
	case strings.HasSuffix(field, "_ms") || strings.HasSuffix(field, "_ns") ||
		strings.Contains(field, "_ns_per_") || strings.HasSuffix(field, "_seconds") ||
		strings.HasSuffix(field, "bytes") || strings.HasSuffix(field, "_us") ||
		strings.HasSuffix(field, "_per_node") || strings.HasSuffix(field, "_pct") ||
		strings.HasSuffix(field, "_mb") || strings.HasSuffix(field, "_s") ||
		strings.Contains(field, "residual"):
		return lowerBetter, true
	case field == "iters" || strings.HasSuffix(field, "_iters"):
		// Iteration counts are deterministic solver outputs, not noisy
		// wall-clock: a rise means the solve got algorithmically worse
		// (preconditioner or warm-start regression), so they gate.
		return lowerBetter, true
	}
	return context, knownContext[field]
}

// flatten walks a decoded JSON document into path → numeric leaf.
// Array elements of objects are keyed by their identifying field when
// one exists ("rows[n=500]"), falling back to the index; non-numeric
// leaves (strings, bools) become context entries keyed by value-equality
// via their string form.
func flatten(doc any, prefix string, out map[string]float64, ctx map[string]string) {
	switch v := doc.(type) {
	case map[string]any:
		for k, child := range v {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(child, p, out, ctx)
		}
	case []any:
		for i, child := range v {
			key := fmt.Sprintf("%s[%s]", prefix, elementKey(child, i))
			flatten(child, key, out, ctx)
		}
	case float64:
		out[prefix] = v
	case string:
		ctx[prefix] = v
	case bool:
		ctx[prefix] = fmt.Sprint(v)
	}
}

// elementKey aligns array elements across files: prefer an identifying
// field over the position so a reordered or extended ladder still
// matches rung to rung.
func elementKey(el any, idx int) string {
	obj, ok := el.(map[string]any)
	if !ok {
		return fmt.Sprint(idx)
	}
	for _, id := range []string{"n", "nodes", "grid", "name", "phase"} {
		if v, ok := obj[id]; ok {
			return fmt.Sprintf("%s=%v", id, v)
		}
	}
	if v, ok := obj["figures"]; ok {
		if list, ok := v.([]any); ok && len(list) > 0 {
			return fmt.Sprintf("figures=%v", list[0])
		}
	}
	return fmt.Sprint(idx)
}

type metricDiff struct {
	path       string
	dir        direction
	oldV, newV float64
	deltaPct   float64 // signed percent change new vs old
	regressed  bool
}

type report struct {
	metrics     []metricDiff
	regressions []string
	// onlyOld / onlyNew are paths present in one file but not the other.
	onlyOld, onlyNew []string
	// ctxChanged are non-numeric fields whose values differ (host,
	// schema version) — reported, never failing.
	ctxChanged []string
	// unclassified are numeric paths whose field name matched no
	// direction rule and no known context name — warned about so new
	// schema fields don't silently escape the gate.
	unclassified []string
}

func diff(oldDoc, newDoc any, tolPct float64) report {
	oldNum, oldCtx := map[string]float64{}, map[string]string{}
	newNum, newCtx := map[string]float64{}, map[string]string{}
	flatten(oldDoc, "", oldNum, oldCtx)
	flatten(newDoc, "", newNum, newCtx)

	var rep report
	seenUnclassified := map[string]bool{}
	noteUnclassified := func(path string) {
		if _, known := classify(path); !known && !seenUnclassified[path] {
			seenUnclassified[path] = true
			rep.unclassified = append(rep.unclassified, path)
		}
	}
	for path, ov := range oldNum {
		noteUnclassified(path)
		nv, ok := newNum[path]
		if !ok {
			rep.onlyOld = append(rep.onlyOld, path)
			continue
		}
		dir, _ := classify(path)
		d := metricDiff{path: path, dir: dir, oldV: ov, newV: nv}
		if ov != 0 {
			d.deltaPct = 100 * (nv/ov - 1)
		} else if nv != 0 {
			d.deltaPct = 100
		}
		switch d.dir {
		case lowerBetter:
			d.regressed = d.deltaPct > tolPct
		case higherBetter:
			d.regressed = d.deltaPct < -tolPct
		}
		if d.regressed {
			rep.regressions = append(rep.regressions, path)
		}
		rep.metrics = append(rep.metrics, d)
	}
	for path := range newNum {
		noteUnclassified(path)
		if _, ok := oldNum[path]; !ok {
			rep.onlyNew = append(rep.onlyNew, path)
		}
	}
	for path, ov := range oldCtx {
		if nv, ok := newCtx[path]; ok && nv != ov {
			rep.ctxChanged = append(rep.ctxChanged, fmt.Sprintf("%s: %q -> %q", path, ov, nv))
		}
	}
	sort.Slice(rep.metrics, func(i, j int) bool { return rep.metrics[i].path < rep.metrics[j].path })
	sort.Strings(rep.regressions)
	sort.Strings(rep.onlyOld)
	sort.Strings(rep.onlyNew)
	sort.Strings(rep.ctxChanged)
	sort.Strings(rep.unclassified)
	return rep
}

func render(w *os.File, rep report, all bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\told\tnew\tdelta\t")
	shown := 0
	for _, d := range rep.metrics {
		mark := ""
		switch {
		case d.regressed:
			mark = "REGRESSED"
		case d.dir == context:
			if !all {
				continue
			}
		case !all && d.deltaPct > -1 && d.deltaPct < 1:
			continue
		}
		fmt.Fprintf(tw, "%s\t%g\t%g\t%+.1f%%\t%s\n", d.path, d.oldV, d.newV, d.deltaPct, mark)
		shown++
	}
	tw.Flush()
	if shown == 0 {
		fmt.Fprintln(w, "no metric moved by 1% or more")
	}
	for _, p := range rep.onlyOld {
		fmt.Fprintf(w, "only in old: %s\n", p)
	}
	for _, p := range rep.onlyNew {
		fmt.Fprintf(w, "only in new: %s\n", p)
	}
	for _, c := range rep.ctxChanged {
		fmt.Fprintf(w, "context changed: %s\n", c)
	}
	for _, p := range rep.unclassified {
		fmt.Fprintf(w, "warning: unclassified numeric metric %s (add a direction suffix or a knownContext entry; currently ungated)\n", p)
	}
}
