// Command elink-experiments regenerates the paper's evaluation figures
// (§8) plus the complexity checks and ablations, printing one table per
// figure. EXPERIMENTS.md records the measured shapes next to the paper's.
//
// Figures run concurrently on the shared execution layer (-j bounds the
// workers; figure results are bitwise independent of -j, and each
// figure's output is buffered so tables always print in the order
// below).
//
// Usage:
//
//	elink-experiments                  # quick scale (seconds)
//	elink-experiments -paper           # the paper's scale (minutes)
//	elink-experiments -only fig08,fig13
//	elink-experiments -j 8             # eight-way figure/kernel parallelism
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"elink/internal/experiments"
	"elink/internal/par"
)

var figures = []struct {
	name string
	run  func(experiments.Scale) (*experiments.Table, error)
}{
	{"fig08", experiments.Fig08},
	{"fig09", experiments.Fig09},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"fig12", experiments.Fig12},
	{"fig13", experiments.Fig13},
	{"fig14", experiments.Fig14},
	{"fig15", experiments.Fig15},
	{"path", experiments.PathQueries},
	{"complexity", experiments.Complexity},
	{"ablation-unordered", experiments.AblationUnordered},
	{"ablation-switches", experiments.AblationSwitches},
	{"ablation-phi", experiments.AblationPhi},
	{"kmedoids", experiments.KMedoidsComparison},
	{"recluster", experiments.ReclusterPolicy},
	{"sampling", experiments.RepresentativeSampling},
	{"hotspot", experiments.HotspotSpread},
	{"optimality", experiments.OptimalityGap},
	{"obs", experiments.ObsReplay},
	{"spans", experiments.Spans},
	{"routes", experiments.RoutesBench},
	{"parbench", experiments.ParallelBench},
	{"persistbench", experiments.PersistBench},
	{"eigensparse", experiments.EigenSparseBench},
}

func validNames() string {
	names := make([]string, len(figures))
	for i, f := range figures {
		names[i] = f.name
	}
	return strings.Join(names, ", ")
}

// dumpTo wraps a *To-style figure so its JSON payload lands in the named
// file.
func dumpTo(path string, run func(experiments.Scale, io.Writer) (*experiments.Table, error)) func(experiments.Scale) (*experiments.Table, error) {
	return func(sc experiments.Scale) (*experiments.Table, error) {
		out, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer out.Close()
		return run(sc, out)
	}
}

func main() {
	var (
		paper    = flag.Bool("paper", false, "run at the paper's full scale (2500-node Death Valley, 100k readings; the spectral baseline dominates and takes many minutes)")
		only     = flag.String("only", "", "comma-separated figure names to run (default all); names: fig08..fig15, path, complexity, ablation-*")
		seed     = flag.Int64("seed", 1, "random seed")
		jobs     = flag.Int("j", 0, "worker count for the parallel execution layer and the figure runner (0 = GOMAXPROCS or ELINK_WORKERS); results are identical for every value")
		queries  = flag.Int("queries", 0, "queries per data point (0 = scale default)")
		taoDays  = flag.Int("tao-days", 0, "override Tao stream length in days")
		dvNodes  = flag.Int("dv-nodes", 0, "override Death Valley node count")
		dvTopos  = flag.Int("dv-topologies", 0, "override Death Valley topology count")
		readings = flag.Int("readings", 0, "override synthetic readings per node")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		obsOut   = flag.String("obs-out", "", "with the obs figure: write the instrumented run's full metrics registry to this file as JSON")
		spansOut = flag.String("spans-out", "", "with the spans figure: write the tracing overhead and per-phase p50/p95/max attribution table to this file as JSON")
		routeOut = flag.String("routes-out", "", "with the routes figure: write the routing benchmark results to this file as JSON")
		parOut   = flag.String("par-out", "", "with the parbench figure: write the parallel-layer benchmark results to this file as JSON (run it via -only parbench so concurrent figures don't distort timings)")
		persOut  = flag.String("persist-out", "", "with the persistbench figure: write the snapshot/restore benchmark results to this file as JSON (run it via -only persistbench so concurrent figures don't distort timings)")
		eigenOut = flag.String("eigen-sparse-out", "", "with the eigensparse figure: write the sparse eigensolver ladder results to this file as JSON (run it via -only eigensparse -paper for the committed n=20000 ladder shape)")
	)
	flag.Parse()

	if *jobs > 0 {
		par.SetWorkers(*jobs)
	}

	sc := experiments.QuickScale()
	if *paper {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *taoDays > 0 {
		sc.TaoDays = *taoDays
	}
	if *dvNodes > 0 {
		sc.DVNodes = *dvNodes
	}
	if *dvTopos > 0 {
		sc.DVTopologies = *dvTopos
	}
	if *readings > 0 {
		sc.SynReadings = *readings
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	// Unknown -only names fail fast instead of silently running nothing.
	known := map[string]bool{}
	for _, f := range figures {
		known[f.name] = true
	}
	var unknown []string
	for n := range want {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "elink-experiments: unknown figure(s) %s; valid names: %s\n",
			strings.Join(unknown, ", "), validNames())
		os.Exit(1)
	}

	type figEntry struct {
		name string
		run  func(experiments.Scale) (*experiments.Table, error)
	}
	var selected []figEntry
	for _, f := range figures {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		run := f.run
		switch {
		case f.name == "obs" && *obsOut != "":
			run = dumpTo(*obsOut, experiments.ObsReplayTo)
		case f.name == "spans" && *spansOut != "":
			run = dumpTo(*spansOut, experiments.SpansTo)
		case f.name == "routes" && *routeOut != "":
			run = dumpTo(*routeOut, experiments.RoutesBenchTo)
		case f.name == "parbench" && *parOut != "":
			run = dumpTo(*parOut, experiments.ParallelBenchTo)
		case f.name == "persistbench" && *persOut != "":
			run = dumpTo(*persOut, experiments.PersistBenchTo)
		case f.name == "eigensparse" && *eigenOut != "":
			run = dumpTo(*eigenOut, experiments.EigenSparseBenchTo)
		}
		selected = append(selected, figEntry{name: f.name, run: run})
	}

	// Run the selected figures concurrently, buffering each figure's
	// rendered output so tables stream to stdout in registration order
	// the moment their prefix is complete.
	type figResult struct {
		text string
		err  error
	}
	renderOne := func(f figEntry) figResult {
		start := time.Now()
		tbl, err := f.run(sc)
		if err != nil {
			return figResult{err: fmt.Errorf("%s: %w", f.name, err)}
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("wall time: %v", time.Since(start).Round(time.Millisecond)))
		var buf bytes.Buffer
		if *csvOut {
			fmt.Fprintf(&buf, "# %s\n", tbl.Title)
			if err := tbl.WriteCSV(&buf); err != nil {
				return figResult{err: fmt.Errorf("%s: %w", f.name, err)}
			}
			fmt.Fprintln(&buf)
		} else {
			tbl.Render(&buf)
		}
		return figResult{text: buf.String()}
	}

	runners := par.Workers()
	if runners > len(selected) {
		runners = len(selected)
	}
	results := make([]figResult, len(selected))
	done := make(chan int, len(selected))
	jobsCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < runners; w++ {
		wg.Add(1)
		go func() { //elink:allow godiscipline — figure worker pool streams ordered output as figures finish; par.For would join before printing
			defer wg.Done()
			for i := range jobsCh {
				results[i] = renderOne(selected[i])
				done <- i
			}
		}()
	}
	go func() { //elink:allow godiscipline — feeder goroutine closes the jobs channel after the pool drains; not a fork-join shape
		for i := range selected {
			jobsCh <- i
		}
		close(jobsCh)
		wg.Wait()
		close(done)
	}()

	finished := make([]bool, len(selected))
	next := 0
	failed := false
	for i := range done {
		finished[i] = true
		for next < len(selected) && finished[next] {
			if err := results[next].err; err != nil {
				fmt.Fprintf(os.Stderr, "elink-experiments: %v\n", err)
				failed = true
			} else {
				fmt.Print(results[next].text)
			}
			next++
		}
	}
	if failed {
		os.Exit(1)
	}
}
