// Command elink-experiments regenerates the paper's evaluation figures
// (§8) plus the complexity checks and ablations, printing one table per
// figure. EXPERIMENTS.md records the measured shapes next to the paper's.
//
// Usage:
//
//	elink-experiments                  # quick scale (seconds)
//	elink-experiments -paper           # the paper's scale (minutes)
//	elink-experiments -only fig08,fig13
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"elink/internal/experiments"
)

var figures = []struct {
	name string
	run  func(experiments.Scale) (*experiments.Table, error)
}{
	{"fig08", experiments.Fig08},
	{"fig09", experiments.Fig09},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"fig12", experiments.Fig12},
	{"fig13", experiments.Fig13},
	{"fig14", experiments.Fig14},
	{"fig15", experiments.Fig15},
	{"path", experiments.PathQueries},
	{"complexity", experiments.Complexity},
	{"ablation-unordered", experiments.AblationUnordered},
	{"ablation-switches", experiments.AblationSwitches},
	{"ablation-phi", experiments.AblationPhi},
	{"kmedoids", experiments.KMedoidsComparison},
	{"recluster", experiments.ReclusterPolicy},
	{"sampling", experiments.RepresentativeSampling},
	{"hotspot", experiments.HotspotSpread},
	{"optimality", experiments.OptimalityGap},
	{"obs", experiments.ObsReplay},
	{"routes", experiments.RoutesBench},
}

func main() {
	var (
		paper    = flag.Bool("paper", false, "run at the paper's full scale (2500-node Death Valley, 100k readings; the spectral baseline dominates and takes many minutes)")
		only     = flag.String("only", "", "comma-separated figure names to run (default all); names: fig08..fig15, path, complexity, ablation-*")
		seed     = flag.Int64("seed", 1, "random seed")
		queries  = flag.Int("queries", 0, "queries per data point (0 = scale default)")
		taoDays  = flag.Int("tao-days", 0, "override Tao stream length in days")
		dvNodes  = flag.Int("dv-nodes", 0, "override Death Valley node count")
		dvTopos  = flag.Int("dv-topologies", 0, "override Death Valley topology count")
		readings = flag.Int("readings", 0, "override synthetic readings per node")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		obsOut   = flag.String("obs-out", "", "with the obs figure: write the instrumented run's full metrics registry to this file as JSON")
		routeOut = flag.String("routes-out", "", "with the routes figure: write the routing benchmark results to this file as JSON")
	)
	flag.Parse()

	sc := experiments.QuickScale()
	if *paper {
		sc = experiments.DefaultScale()
	}
	sc.Seed = *seed
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *taoDays > 0 {
		sc.TaoDays = *taoDays
	}
	if *dvNodes > 0 {
		sc.DVNodes = *dvNodes
	}
	if *dvTopos > 0 {
		sc.DVTopologies = *dvTopos
	}
	if *readings > 0 {
		sc.SynReadings = *readings
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}

	for _, f := range figures {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		start := time.Now()
		run := f.run
		if f.name == "obs" && *obsOut != "" {
			run = func(sc experiments.Scale) (*experiments.Table, error) {
				out, err := os.Create(*obsOut)
				if err != nil {
					return nil, err
				}
				defer out.Close()
				return experiments.ObsReplayTo(sc, out)
			}
		}
		if f.name == "routes" && *routeOut != "" {
			run = func(sc experiments.Scale) (*experiments.Table, error) {
				out, err := os.Create(*routeOut)
				if err != nil {
					return nil, err
				}
				defer out.Close()
				return experiments.RoutesBenchTo(sc, out)
			}
		}
		tbl, err := run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "elink-experiments: %s: %v\n", f.name, err)
			os.Exit(1)
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("wall time: %v", time.Since(start).Round(time.Millisecond)))
		if *csvOut {
			fmt.Printf("# %s\n", tbl.Title)
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "elink-experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		tbl.Render(os.Stdout)
	}
}
