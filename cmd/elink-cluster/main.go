// Command elink-cluster runs one clustering algorithm on one of the
// built-in datasets and prints the resulting clusters and communication
// cost.
//
// Usage:
//
//	elink-cluster -dataset tao -algo elink -mode implicit -delta 0.2
//	elink-cluster -dataset deathvalley -nodes 500 -algo hierarchical -delta 150
//	elink-cluster -dataset synthetic -nodes 300 -algo forest -delta 0.1 -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"elink"
)

func main() {
	var (
		dataset = flag.String("dataset", "tao", "dataset: tao | deathvalley | synthetic")
		algo    = flag.String("algo", "elink", "algorithm: elink | spectral | hierarchical | forest")
		mode    = flag.String("mode", "implicit", "elink signalling: implicit | explicit | unordered")
		delta   = flag.Float64("delta", 0, "dissimilarity threshold (0 = dataset default)")
		nodes   = flag.Int("nodes", 0, "node count for deathvalley/synthetic (0 = default)")
		days    = flag.Int("days", 10, "days of Tao data")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print every cluster's members")
		asJSON  = flag.Bool("json", false, "emit the clustering as JSON")
		svgPath = flag.String("svg", "", "write the clustered network as an SVG to this file")
	)
	flag.Parse()

	ds, err := loadDataset(*dataset, *nodes, *days, *seed)
	if err != nil {
		fail(err)
	}
	d := *delta
	if d == 0 {
		d = ds.Deltas[len(ds.Deltas)/2]
	}

	res, err := runAlgo(ds, *algo, *mode, d, *seed)
	if err != nil {
		fail(err)
	}

	if *asJSON {
		data, err := json.MarshalIndent(res.Clustering, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}

	q := res.Clustering.Measure(ds.Features, ds.Metric)
	fmt.Printf("dataset=%s nodes=%d algo=%s delta=%g\n", ds.Name, ds.Graph.N(), *algo, d)
	fmt.Printf("clusters=%d largest=%d mean-size=%.1f max-diameter=%.4g\n",
		q.NumClusters, q.LargestSize, q.MeanSize, q.MaxDiameter)
	fmt.Printf("cost: %s\n", res.Stats)
	if err := res.Clustering.Validate(ds.Graph, ds.Features, ds.Metric, d, 1e-9); err != nil {
		fmt.Printf("VALIDATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("validation: every cluster connected and delta-compact")

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fail(err)
		}
		opts := elink.SVGOptions{
			ShowEdges: true, ShowRoots: true,
			Title: fmt.Sprintf("%s: %d clusters at delta=%g (%s)", ds.Name, q.NumClusters, d, *algo),
		}
		if err := elink.WriteNetworkSVG(f, ds.Graph, res.Clustering, opts); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}

	if *verbose {
		type row struct {
			root elink.NodeID
			size int
			idx  int
		}
		rows := make([]row, 0, res.Clustering.NumClusters())
		for ci, members := range res.Clustering.Members {
			rows = append(rows, row{root: res.Clustering.Roots[ci], size: len(members), idx: ci})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].size > rows[j].size })
		for _, r := range rows {
			fmt.Printf("  cluster root=%d size=%d members=%v\n", r.root, r.size, res.Clustering.Members[r.idx])
		}
	}
}

func loadDataset(name string, nodes, days int, seed int64) (*elink.Dataset, error) {
	switch name {
	case "tao":
		return elink.TaoDataset(days, seed)
	case "deathvalley":
		if nodes == 0 {
			nodes = 500
		}
		return elink.DeathValleyDataset(nodes, seed)
	case "synthetic":
		if nodes == 0 {
			nodes = 300
		}
		return elink.SyntheticDataset(nodes, 5000, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func runAlgo(ds *elink.Dataset, algo, mode string, delta float64, seed int64) (*elink.Result, error) {
	switch algo {
	case "elink":
		var m elink.Mode
		switch mode {
		case "implicit":
			m = elink.Implicit
		case "explicit":
			m = elink.Explicit
		case "unordered":
			m = elink.Unordered
		default:
			return nil, fmt.Errorf("unknown mode %q", mode)
		}
		return elink.Cluster(ds.Graph, elink.Config{
			Delta: delta, Metric: ds.Metric, Features: ds.Features, Mode: m, Seed: seed,
		})
	case "spectral":
		return elink.SpectralCluster(ds.Graph, elink.SpectralConfig{
			Delta: delta, Metric: ds.Metric, Features: ds.Features, Seed: seed,
		})
	case "hierarchical":
		return elink.HierarchicalCluster(ds.Graph, elink.HierConfig{
			Delta: delta, Metric: ds.Metric, Features: ds.Features,
		})
	case "forest":
		return elink.SpanningForestCluster(ds.Graph, elink.ForestConfig{
			Delta: delta, Metric: ds.Metric, Features: ds.Features, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "elink-cluster:", err)
	os.Exit(1)
}
