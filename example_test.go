package elink_test

import (
	"bytes"
	"fmt"

	"elink"
)

// Example clusters a tiny grid with two observation regimes and runs a
// range query over the resulting index.
func Example() {
	g := elink.NewGrid(4, 4)
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		if g.Pos[u].X >= 2 {
			feats[u] = elink.Feature{5}
		} else {
			feats[u] = elink.Feature{0}
		}
	}

	res, err := elink.Cluster(g, elink.Config{
		Delta:    1,
		Metric:   elink.Scalar(),
		Features: feats,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.Clustering.NumClusters())

	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		panic(err)
	}
	q := elink.RangeQuery(idx, elink.Feature{5}, 0.5, 0)
	fmt.Println("matches:", len(q.Matches))
	// Output:
	// clusters: 2
	// matches: 8
}

// ExampleEngine_snapshot round-trips a live streaming engine through
// the durability layer: snapshot its full state, restore into a fresh
// engine over the same network, and observe identical externally
// visible state.
func ExampleEngine_snapshot() {
	g := elink.NewGrid(3, 4)
	cfg := elink.EngineConfig{Order: 0, Delta: 1.0, Slack: 0.1, Metric: elink.Euclidean(), Seed: 7}
	eng, err := elink.NewEngine(g, cfg)
	if err != nil {
		panic(err)
	}
	batch := make([]elink.FeatureUpdate, g.N())
	for u := 0; u < g.N(); u++ {
		v := 0.0
		if g.Pos[u].X >= 2 {
			v = 5
		}
		batch[u] = elink.FeatureUpdate{Node: elink.NodeID(u), Feature: elink.Feature{v}}
	}
	if _, err := eng.IngestFeatures(batch); err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if _, err := eng.SaveSnapshot(&buf); err != nil {
		panic(err)
	}

	// A fresh engine with the same topology and config resumes exactly
	// where the snapshot was taken.
	restored, err := elink.NewEngine(g, cfg)
	if err != nil {
		panic(err)
	}
	if err := restored.Restore(&buf); err != nil {
		panic(err)
	}
	a, b := eng.Snapshot(), restored.Snapshot()
	fmt.Println("batches:", restored.Seq())
	fmt.Println("epoch match:", a.Epoch == b.Epoch)
	fmt.Println("clusters:", b.Clustering.NumClusters())
	// Output:
	// batches: 1
	// epoch match: true
	// clusters: 2
}

// ExampleNewMaintainer shows the slack-Δ update protocol silencing a
// small feature drift.
func ExampleNewMaintainer() {
	g := elink.NewGrid(3, 3)
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{1}
	}
	res, err := elink.Cluster(g, elink.Config{Delta: 1.0, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		panic(err)
	}
	m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
		Delta: 2.0, Slack: 0.5, Metric: elink.Scalar(),
	})
	if err != nil {
		panic(err)
	}
	m.Update(4, elink.Feature{1.3}) // drift of 0.3 <= slack: silent
	fmt.Println("messages:", m.Stats().Messages)
	// Output:
	// messages: 0
}
