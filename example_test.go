package elink_test

import (
	"fmt"

	"elink"
)

// Example clusters a tiny grid with two observation regimes and runs a
// range query over the resulting index.
func Example() {
	g := elink.NewGrid(4, 4)
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		if g.Pos[u].X >= 2 {
			feats[u] = elink.Feature{5}
		} else {
			feats[u] = elink.Feature{0}
		}
	}

	res, err := elink.Cluster(g, elink.Config{
		Delta:    1,
		Metric:   elink.Scalar(),
		Features: feats,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.Clustering.NumClusters())

	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		panic(err)
	}
	q := elink.RangeQuery(idx, elink.Feature{5}, 0.5, 0)
	fmt.Println("matches:", len(q.Matches))
	// Output:
	// clusters: 2
	// matches: 8
}

// ExampleNewMaintainer shows the slack-Δ update protocol silencing a
// small feature drift.
func ExampleNewMaintainer() {
	g := elink.NewGrid(3, 3)
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{1}
	}
	res, err := elink.Cluster(g, elink.Config{Delta: 1.0, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		panic(err)
	}
	m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
		Delta: 2.0, Slack: 0.5, Metric: elink.Scalar(),
	})
	if err != nil {
		panic(err)
	}
	m.Update(4, elink.Feature{1.3}) // drift of 0.3 <= slack: silent
	fmt.Println("messages:", m.Stats().Messages)
	// Output:
	// messages: 0
}
