package elink_test

import (
	"math/rand"
	"strings"
	"testing"

	"elink"
)

// These tests exercise the public facade end to end, the way a
// downstream user would.

func TestPublicQuickstartFlow(t *testing.T) {
	g := elink.NewGrid(6, 6)
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		feats[u] = elink.Feature{float64(int(g.Pos[u].X) / 3)} // two halves
	}
	res, err := elink.Cluster(g, elink.Config{
		Delta:    0.5,
		Metric:   elink.Scalar(),
		Features: feats,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two feature plateaus: optimal is 2 clusters; ELink may split one
	// plateau between same-level sentinels (it approximates the optimum).
	if n := res.Clustering.NumClusters(); n < 2 || n > 4 {
		t.Fatalf("NumClusters = %d, want 2-4 for two plateaus", n)
	}
	if err := res.Clustering.Validate(g, feats, elink.Scalar(), 0.5, 1e-9); err != nil {
		t.Fatal(err)
	}

	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		t.Fatal(err)
	}
	r := elink.RangeQuery(idx, elink.Feature{0}, 0.1, 0)
	if len(r.Matches) != 18 {
		t.Errorf("range query matched %d nodes, want the 18 in the left half", len(r.Matches))
	}
	tag := elink.TAGCost(g)
	if r.Stats.Messages >= tag.Messages {
		t.Errorf("pruned query (%d msgs) should beat TAG (%d)", r.Stats.Messages, tag.Messages)
	}
}

func TestPublicAsyncAndBaselines(t *testing.T) {
	g := elink.NewRandomNetwork(50, 4, 7)
	ds, err := elink.SyntheticDataset(50, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	_ = g // the dataset carries its own graph
	cfg := elink.Config{Delta: 0.2, Metric: ds.Metric, Features: ds.Features, Mode: elink.Explicit}
	if _, err := elink.ClusterAsync(ds.Graph, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := elink.SpanningForestCluster(ds.Graph, elink.ForestConfig{
		Delta: 0.2, Metric: ds.Metric, Features: ds.Features,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := elink.HierarchicalCluster(ds.Graph, elink.HierConfig{
		Delta: 0.2, Metric: ds.Metric, Features: ds.Features,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := elink.SpectralCluster(ds.Graph, elink.SpectralConfig{
		Delta: 0.2, Metric: ds.Metric, Features: ds.Features, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMaintainerFlow(t *testing.T) {
	g := elink.NewGrid(4, 4)
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{0}
	}
	delta, slack := 2.0, 0.3
	res, err := elink.Cluster(g, elink.Config{
		Delta: delta - 2*slack, Metric: elink.Scalar(), Features: feats,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
		Delta: delta, Slack: slack, Metric: elink.Scalar(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Update(5, elink.Feature{0.2})
	if m.Stats().Messages != 0 {
		t.Error("small update should be screened locally")
	}
	c := elink.NewCentralizedUpdater(g, 0, feats, elink.MaintainerConfig{
		Delta: delta, Slack: slack, Metric: elink.Scalar(),
	}, 1)
	c.Update(5, elink.Feature{5})
	if c.Stats().Messages == 0 {
		t.Error("centralized updater should ship the violation")
	}
}

func TestPublicDatasets(t *testing.T) {
	tao, err := elink.TaoDataset(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tao.Graph.N() != 54 || len(tao.Features[0]) != 4 {
		t.Error("Tao dataset shape wrong")
	}
	dv, err := elink.DeathValleyDataset(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Graph.N() != 120 {
		t.Error("DeathValley dataset shape wrong")
	}
}

func TestPublicPathQuery(t *testing.T) {
	ds, err := elink.DeathValleyDataset(150, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := elink.Cluster(ds.Graph, elink.Config{
		Delta: 200, Metric: ds.Metric, Features: ds.Features,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := elink.BuildIndex(ds.Graph, res.Clustering, ds.Features, ds.Metric)
	if err != nil {
		t.Fatal(err)
	}
	danger := elink.Feature{175} // the valley floor
	p := elink.PathQuery(idx, danger, 50, 0, elink.NodeID(ds.Graph.N()-1))
	f := elink.BFSFloodPath(ds.Graph, ds.Features, ds.Metric, danger, 50, 0, elink.NodeID(ds.Graph.N()-1))
	if p.Found != f.Found {
		t.Errorf("cluster path found=%v, flood found=%v", p.Found, f.Found)
	}
}

func TestRenderGridClusters(t *testing.T) {
	g := elink.NewGrid(2, 3)
	feats := []elink.Feature{{0}, {0}, {0}, {9}, {9}, {9}}
	res, err := elink.Cluster(g, elink.Config{Delta: 1, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	out := elink.RenderGridClusters(g, res.Clustering, 3)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("render shape wrong: %q", out)
	}
	// Top row one letter, bottom row another.
	if lines[0] != strings.Repeat(string(lines[0][0]), 3) || lines[1] != strings.Repeat(string(lines[1][0]), 3) {
		t.Errorf("rows should be uniform: %q", out)
	}
	if lines[0][0] == lines[1][0] {
		t.Errorf("the two plateaus should get different letters: %q", out)
	}
}

// End-to-end: generate terrain, cluster it, index it, and verify 40
// random range queries against brute force plus a path query against the
// flood baseline — the full pipeline a downstream user runs.
func TestEndToEndPipeline(t *testing.T) {
	ds, err := elink.DeathValleyDataset(250, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := elink.Cluster(ds.Graph, elink.Config{
		Delta: 180, Metric: ds.Metric, Features: ds.Features, Mode: elink.Explicit, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering.Validate(ds.Graph, ds.Features, ds.Metric, 180, 1e-9); err != nil {
		t.Fatal(err)
	}
	idx, err := elink.BuildIndex(ds.Graph, res.Clustering, ds.Features, ds.Metric)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 40; i++ {
		q := elink.Feature{175 + rng.Float64()*1800}
		r := rng.Float64() * 400
		got := elink.RangeQuery(idx, q, r, elink.NodeID(rng.Intn(ds.Graph.N())))
		want := 0
		for _, f := range ds.Features {
			if ds.Metric.Distance(q, f) <= r {
				want++
			}
		}
		if len(got.Matches) != want {
			t.Fatalf("query %d: %d matches, want %d", i, len(got.Matches), want)
		}
	}
	p := elink.PathQuery(idx, elink.Feature{175}, 120, 0, elink.NodeID(ds.Graph.N()-1))
	f := elink.BFSFloodPath(ds.Graph, ds.Features, ds.Metric, elink.Feature{175}, 120, 0, elink.NodeID(ds.Graph.N()-1))
	if p.Found != f.Found {
		t.Errorf("path existence disagrees: cluster %v vs flood %v", p.Found, f.Found)
	}
	if p.Found && p.Stats.Messages >= f.Stats.Messages {
		t.Errorf("clustered path (%d msgs) should beat flooding (%d)", p.Stats.Messages, f.Stats.Messages)
	}
}

func TestFacadeHelpers(t *testing.T) {
	// Metrics.
	if d := elink.Euclidean().Distance(elink.Feature{0, 0}, elink.Feature{3, 4}); d != 5 {
		t.Errorf("Euclidean = %v", d)
	}
	if d := elink.Manhattan().Distance(elink.Feature{0}, elink.Feature{2}); d != 2 {
		t.Errorf("Manhattan = %v", d)
	}
	if d := elink.WeightedEuclidean(4).Distance(elink.Feature{0}, elink.Feature{1}); d != 2 {
		t.Errorf("WeightedEuclidean = %v", d)
	}
	// Delay models.
	if elink.SynchronousDelay() == nil || elink.AsynchronousDelay(0.5, 1.5) == nil {
		t.Error("delay constructors returned nil")
	}
	// Topology constructors.
	g := elink.NewRandomGeometric(30, 10, 2, 5)
	if g.N() != 30 || !g.Connected() {
		t.Error("NewRandomGeometric malformed")
	}
}

func TestFacadeKMedoidsAndTx(t *testing.T) {
	g := elink.NewGrid(4, 4)
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{float64(i % 2 * 10)}
	}
	res, err := elink.KMedoidsCluster(g, elink.KMedoidsConfig{Delta: 1, Metric: elink.Scalar(), Features: feats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages == 0 {
		t.Error("k-medoids should charge broadcast traffic")
	}
	tx, err := elink.ClusterTxPerNode(g, elink.Config{Delta: 1, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range tx {
		total += v
	}
	cl, err := elink.Cluster(g, elink.Config{Delta: 1, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	if total != cl.Stats.Messages {
		t.Errorf("per-node tx sum %d != total messages %d", total, cl.Stats.Messages)
	}
}

func TestFacadeSVG(t *testing.T) {
	g := elink.NewGrid(2, 2)
	feats := []elink.Feature{{0}, {0}, {0}, {0}}
	res, err := elink.Cluster(g, elink.Config{Delta: 1, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := elink.WriteNetworkSVG(&b, g, res.Clustering, elink.SVGOptions{ShowEdges: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Error("no SVG produced")
	}
}

// Integration of §6 and §7: stream feature drift through the maintenance
// protocol while refreshing the index incrementally; range queries must
// stay exact against the live features the whole time.
func TestMaintenanceAndIndexStayConsistent(t *testing.T) {
	g := elink.NewRandomNetwork(60, 4, 13)
	rng := rand.New(rand.NewSource(13))
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{rng.Float64()}
	}
	delta, slack := 3.0, 0.3
	res, err := elink.Cluster(g, elink.Config{
		Delta: delta - 2*slack, Metric: elink.Scalar(), Features: feats,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
		Delta: delta, Slack: slack, Metric: elink.Scalar(),
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		t.Fatal(err)
	}

	cur := make([]float64, g.N())
	for i := range cur {
		cur[i] = feats[i][0]
	}
	for step := 0; step < 400; step++ {
		u := elink.NodeID(rng.Intn(g.N()))
		cur[u] += rng.NormFloat64() * 0.1
		f := elink.Feature{cur[u]}
		before := m.NumClusters()
		m.Update(u, f)
		if m.NumClusters() != before {
			// Membership changed: the incremental refresh no longer
			// applies; rebuild the index from the maintained clustering
			// (what a deployment would schedule).
			idx, err = elink.BuildIndex(g, m.Clustering(), currentFeatures(cur), elink.Scalar())
			if err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := idx.Refresh(u, f); err != nil {
			t.Fatal(err)
		}
		if step%50 == 0 {
			q := elink.Feature{rng.Float64()}
			r := rng.Float64() * 2
			got := elink.RangeQuery(idx, q, r, elink.NodeID(rng.Intn(g.N())))
			want := 0
			for _, v := range cur {
				if (elink.Scalar()).Distance(q, elink.Feature{v}) <= r {
					want++
				}
			}
			if len(got.Matches) != want {
				t.Fatalf("step %d: query returned %d matches, want %d", step, len(got.Matches), want)
			}
		}
	}
}

func currentFeatures(vals []float64) []elink.Feature {
	out := make([]elink.Feature, len(vals))
	for i, v := range vals {
		out[i] = elink.Feature{v}
	}
	return out
}

func TestPublicStreamingEngine(t *testing.T) {
	g := elink.NewGrid(4, 4)
	e, err := elink.NewEngine(g, elink.EngineConfig{
		Order:  1,
		Delta:  0.4,
		Slack:  0.04,
		Metric: elink.Scalar(),
		Policy: elink.PolicyAdaptive,
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RangeQuery(elink.Feature{0.5}, 0.1, 0); err != elink.ErrNotReady {
		t.Fatalf("query before warmup: err = %v, want ErrNotReady", err)
	}

	// Two AR(1) regimes: left half x_t = 0.3 x_{t-1} + eps, right 0.7.
	rng := rand.New(rand.NewSource(11))
	prev := make([]float64, g.N())
	for i := range prev {
		prev[i] = 1
	}
	var res *elink.IngestResult
	for step := 0; step < 30; step++ {
		batch := make([]elink.Reading, g.N())
		for u := 0; u < g.N(); u++ {
			alpha := 0.3
			if g.Pos[u].X >= 2 {
				alpha = 0.7
			}
			prev[u] = alpha*prev[u] + rng.NormFloat64()*0.1
			batch[u] = elink.Reading{Node: elink.NodeID(u), Value: prev[u]}
		}
		if res, err = e.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if !res.Ready || e.Snapshot() == nil {
		t.Fatal("engine did not bootstrap after 30 observations per node")
	}

	s := e.Snapshot()
	r, err := e.RangeQuery(s.Features[0], 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Matches) == 0 {
		t.Error("range query around node 0's own feature matched nothing")
	}
	if _, err := e.PathQuery(elink.Feature{99}, 0.5, 0, elink.NodeID(g.N()-1)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.RangeQueries != 1 || st.PathQueries != 1 || st.Epochs == 0 {
		t.Errorf("stats = %+v, want recorded queries and epochs", st)
	}
	if err := s.Validate(g, elink.Scalar(), 2*0.4); err != nil {
		t.Errorf("snapshot validation: %v", err)
	}
}

func TestPublicGenerateConfigs(t *testing.T) {
	ds, err := elink.GenerateTao(elink.TaoGenConfig{Days: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := elink.GenerateTao(elink.TaoGenConfig{Days: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) == 0 || len(ds.Series[0]) != len(ds2.Series[0]) {
		t.Fatal("generator returned inconsistent series")
	}
	for u := range ds.Series {
		for i := range ds.Series[u] {
			if ds.Series[u][i] != ds2.Series[u][i] {
				t.Fatalf("same seed produced different series at node %d step %d", u, i)
			}
		}
	}
	if _, err := elink.GenerateSynthetic(elink.SyntheticGenConfig{Nodes: 16, Readings: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := elink.GenerateDeathValley(elink.DeathValleyGenConfig{Nodes: 25, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
