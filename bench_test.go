package elink_test

// One benchmark per paper figure/table (§8), plus micro-benchmarks for
// the core building blocks. Each figure bench runs its experiment at
// QuickScale and reports the headline quantity as a custom metric, so
// `go test -bench=.` regenerates every result the paper plots. Run the
// full-scale versions with cmd/elink-experiments -paper.

import (
	"math/rand"
	"testing"

	"elink"
	"elink/internal/experiments"
)

func benchFigure(b *testing.B, run func(experiments.Scale) (*experiments.Table, error), headline func(*experiments.Table) (string, float64)) {
	b.Helper()
	sc := experiments.QuickScale()
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	name, v := headline(tbl)
	b.ReportMetric(v, name)
}

// BenchmarkFig08TaoQuality regenerates Fig 8 (clusters vs δ on Tao data).
func BenchmarkFig08TaoQuality(b *testing.B) {
	benchFigure(b, experiments.Fig08, func(t *experiments.Table) (string, float64) {
		return "elink-clusters@mid-delta", t.Column(experiments.SeriesELinkImplicit)[len(t.Rows)/2]
	})
}

// BenchmarkFig09DeathValleyQuality regenerates Fig 9.
func BenchmarkFig09DeathValleyQuality(b *testing.B) {
	benchFigure(b, experiments.Fig09, func(t *experiments.Table) (string, float64) {
		return "elink-clusters@mid-delta", t.Column(experiments.SeriesELinkImplicit)[len(t.Rows)/2]
	})
}

// BenchmarkFig10UpdateCost regenerates Fig 10 (update cost vs slack).
func BenchmarkFig10UpdateCost(b *testing.B) {
	benchFigure(b, experiments.Fig10, func(t *experiments.Table) (string, float64) {
		el := t.Column("elink-update")
		ce := t.Column("centralized-update")
		return "centralized/elink-cost-ratio", ce[0] / el[0]
	})
}

// BenchmarkFig11SlackQuality regenerates Fig 11 (quality vs slack).
func BenchmarkFig11SlackQuality(b *testing.B) {
	benchFigure(b, experiments.Fig11, func(t *experiments.Table) (string, float64) {
		el := t.Column(experiments.SeriesELinkImplicit)
		return "clusters@max-slack", el[len(el)-1]
	})
}

// BenchmarkFig12TimeScalability regenerates Fig 12 (cumulative messages
// over the Tao stream).
func BenchmarkFig12TimeScalability(b *testing.B) {
	benchFigure(b, experiments.Fig12, func(t *experiments.Table) (string, float64) {
		last := t.Rows[len(t.Rows)-1]
		return "raw/elink-cost-ratio", last.Values[0] / last.Values[2]
	})
}

// BenchmarkFig13SizeScalability regenerates Fig 13 (messages vs N).
func BenchmarkFig13SizeScalability(b *testing.B) {
	benchFigure(b, experiments.Fig13, func(t *experiments.Table) (string, float64) {
		last := t.Rows[len(t.Rows)-1]
		ce := t.Column(experiments.SeriesCentralized)
		el := t.Column(experiments.SeriesELinkImplicit)
		_ = last
		return "centralized/elink@maxN", ce[len(ce)-1] / el[len(el)-1]
	})
}

// BenchmarkFig14TaoRangeQueries regenerates Fig 14.
func BenchmarkFig14TaoRangeQueries(b *testing.B) {
	benchFigure(b, experiments.Fig14, func(t *experiments.Table) (string, float64) {
		el := t.Column(experiments.SeriesELinkImplicit)
		tag := t.Column("tag")
		return "tag/elink-gain@0.7delta", tag[0] / el[0]
	})
}

// BenchmarkFig15SyntheticRangeQueries regenerates Fig 15.
func BenchmarkFig15SyntheticRangeQueries(b *testing.B) {
	benchFigure(b, experiments.Fig15, func(t *experiments.Table) (string, float64) {
		el := t.Column(experiments.SeriesELinkImplicit)
		tag := t.Column("tag")
		return "tag/elink-gain@0.3delta", tag[0] / el[0]
	})
}

// BenchmarkPathQueries regenerates the path-query table (deferred to the
// tech report in the paper, reproduced here).
func BenchmarkPathQueries(b *testing.B) {
	benchFigure(b, experiments.PathQueries, func(t *experiments.Table) (string, float64) {
		el := t.Column("elink-path")
		fl := t.Column("bfs-flood")
		return "flood/elink-gain@mid-gamma", fl[len(fl)/2] / el[len(el)/2]
	})
}

// BenchmarkComplexityBounds regenerates the Theorem 2/3 check.
func BenchmarkComplexityBounds(b *testing.B) {
	benchFigure(b, experiments.Complexity, func(t *experiments.Table) (string, float64) {
		tm := t.Column("time-implicit")
		bound := t.Column("bound-2*kappa*alpha")
		return "time/bound@maxN", tm[len(tm)-1] / bound[len(bound)-1]
	})
}

// BenchmarkAblationUnordered regenerates the ordered-vs-unordered
// ablation.
func BenchmarkAblationUnordered(b *testing.B) {
	benchFigure(b, experiments.AblationUnordered, func(t *experiments.Table) (string, float64) {
		or := t.Column("clusters-ordered")
		un := t.Column("clusters-unordered")
		var o, u float64
		for i := range or {
			o += or[i]
			u += un[i]
		}
		return "unordered/ordered-clusters", u / o
	})
}

// BenchmarkAblationSwitches regenerates the switch-budget ablation.
func BenchmarkAblationSwitches(b *testing.B) {
	benchFigure(b, experiments.AblationSwitches, func(t *experiments.Table) (string, float64) {
		cl := t.Column("clusters")
		return "clusters@c=8/c=1", cl[len(cl)-1] / cl[0]
	})
}

// --- Micro-benchmarks for the core building blocks ---

func benchGraphAndFeatures(n int, seed int64) (*elink.Graph, []elink.Feature) {
	g := elink.NewRandomNetwork(n, 4, seed)
	rng := rand.New(rand.NewSource(seed))
	min, max := g.BoundingBox()
	feats := make([]elink.Feature, g.N())
	for u := 0; u < g.N(); u++ {
		band := int((g.Pos[u].X - min.X) / (max.X - min.X + 1e-9) * 4)
		feats[u] = elink.Feature{float64(band)*5 + rng.Float64()*0.2}
	}
	return g, feats
}

func BenchmarkELinkImplicit400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	cfg := elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.Cluster(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkELinkExplicit400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	cfg := elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats, Mode: elink.Explicit}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.Cluster(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkELinkAsyncRuntime200(b *testing.B) {
	g, feats := benchGraphAndFeatures(200, 1)
	cfg := elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats, Mode: elink.Explicit}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.ClusterAsync(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanningForest400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	cfg := elink.ForestConfig{Delta: 2, Metric: elink.Scalar(), Features: feats}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.SpanningForestCluster(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchical400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	cfg := elink.HierConfig{Delta: 2, Metric: elink.Scalar(), Features: feats}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.HierarchicalCluster(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectral200(b *testing.B) {
	g, feats := benchGraphAndFeatures(200, 1)
	cfg := elink.SpectralConfig{Delta: 2, Metric: elink.Scalar(), Features: feats, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.SpectralCluster(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	res, err := elink.Cluster(g, elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQuery400(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	res, err := elink.Cluster(g, elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elink.RangeQuery(idx, elink.Feature{7.5}, 1.5, elink.NodeID(i%g.N()))
	}
}

func BenchmarkMaintainerUpdate(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	res, err := elink.Cluster(g, elink.Config{Delta: 1.4, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		b.Fatal(err)
	}
	m, err := elink.NewMaintainer(g, res.Clustering, feats, elink.MaintainerConfig{
		Delta: 2, Slack: 0.3, Metric: elink.Scalar(),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, g.N())
	for i := range vals {
		vals[i] = feats[i][0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := elink.NodeID(rng.Intn(g.N()))
		vals[u] += rng.NormFloat64() * 0.05
		m.Update(u, elink.Feature{vals[u]})
	}
}

// BenchmarkKMedoidsComparison regenerates the §9 related-work table.
func BenchmarkKMedoidsComparison(b *testing.B) {
	benchFigure(b, experiments.KMedoidsComparison, func(t *experiments.Table) (string, float64) {
		el := t.Column("elink-messages")
		km := t.Column("kmedoids-messages")
		return "kmedoids/elink-cost@mid-delta", km[len(km)/2] / el[len(el)/2]
	})
}

// BenchmarkReclusterPolicy regenerates the re-clustering policy table.
func BenchmarkReclusterPolicy(b *testing.B) {
	benchFigure(b, experiments.ReclusterPolicy, func(t *experiments.Table) (string, float64) {
		return "daily/never-cost-ratio", t.Rows[2].Values[0] / t.Rows[0].Values[0]
	})
}

func BenchmarkIndexRefresh(b *testing.B) {
	g, feats := benchGraphAndFeatures(400, 1)
	res, err := elink.Cluster(g, elink.Config{Delta: 2, Metric: elink.Scalar(), Features: feats})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := elink.BuildIndex(g, res.Clustering, feats, elink.Scalar())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := elink.NodeID(rng.Intn(g.N()))
		f := elink.Feature{feats[u][0] + rng.NormFloat64()*0.01}
		if _, err := idx.Refresh(u, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalExact12(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := elink.NewRandomNetwork(12, 3, 3)
	feats := make([]elink.Feature, g.N())
	for i := range feats {
		feats[i] = elink.Feature{float64(rng.Intn(4))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elink.OptimalCluster(g, feats, elink.Scalar(), 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
